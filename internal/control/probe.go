package control

import (
	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// ProbeFlowBase offsets probe flow IDs far above data flows (data flows use
// the low IDs, the naive proxy's down-flows sit at 1<<20, chaos/adaptive
// re-homed flows at 1<<21) so probe traffic can never collide with a flow
// binding.
const ProbeFlowBase netsim.FlowID = 1 << 22

// Prober measures one path by sending tiny data-band packets from a host to
// an echo endpoint and timing the round trip. Probes are ControlSize data
// packets, so they queue in the same band as real payload — they feel the
// queueing delay the path would inflict on data — but cost a negligible 64 B
// each. Unanswered probes past the timeout count as losses. All results feed
// the attached PathEstimator.
type Prober struct {
	host    *netsim.Host
	target  netsim.NodeID
	flow    netsim.FlowID
	est     *PathEstimator
	every   units.Duration
	timeout units.Duration
	phase   units.Duration

	seq         int64
	outstanding map[int64]units.Time
	until       units.Time
	started     bool
}

// NewProber builds a prober from host toward target (which must have an
// echo bound on the same flow — see BindEcho). src supplies a deterministic
// initial phase offset in [0, every) so multiple probers don't tick in
// lockstep; a nil src means phase 0.
func NewProber(host *netsim.Host, target netsim.NodeID, flow netsim.FlowID,
	est *PathEstimator, every, timeout units.Duration, src *rng.Source) *Prober {
	p := &Prober{
		host:        host,
		target:      target,
		flow:        flow,
		est:         est,
		every:       every,
		timeout:     timeout,
		outstanding: make(map[int64]units.Time),
	}
	if src != nil && every > 0 {
		p.phase = units.Duration(src.Int63() % int64(every))
	}
	return p
}

// BindEcho installs the probe responder on a host: every probe data packet
// arriving on flow is answered with an ACK back to its source, preserving
// SentAt so the prober can compute the round trip. Works for trimmed probes
// too (a trimmed header still proves liveness; its RTT reflects the priority
// band, and the estimator's min-tracking absorbs the skew).
func BindEcho(h *netsim.Host, flow netsim.FlowID) {
	h.Bind(flow, netsim.EndpointFunc(func(e *sim.Engine, p *netsim.Packet) {
		if p.Kind != netsim.Data {
			return
		}
		r := h.NewPacket()
		r.Flow = flow
		r.Kind = netsim.Ack
		r.Seq = p.Seq
		r.Size = netsim.ControlSize
		r.FullSize = netsim.ControlSize
		r.Dst = p.Src
		r.SentAt = p.SentAt
		h.Send(e, r)
	}))
}

// Start binds the prober's reply handler and begins the probe loop; until
// bounds it in virtual time.
func (p *Prober) Start(e *sim.Engine, until units.Time) {
	if p.started {
		return
	}
	p.started = true
	p.until = until
	p.host.Bind(p.flow, netsim.EndpointFunc(p.onReply))
	e.Schedule(e.Now().Add(p.phase), p.sendProbe)
}

func (p *Prober) sendProbe(e *sim.Engine) {
	now := e.Now()
	// Expire stale probes first: anything unanswered past the timeout is
	// a loss (the echo host is down or the path is blackholed).
	for seq, at := range p.outstanding {
		if now.Sub(at) >= p.timeout {
			delete(p.outstanding, seq)
			p.est.ObserveLoss(true)
		}
	}
	pkt := p.host.NewPacket()
	pkt.Flow = p.flow
	pkt.Kind = netsim.Data
	pkt.Seq = p.seq
	pkt.Size = netsim.ControlSize
	pkt.FullSize = netsim.ControlSize
	pkt.Dst = p.target
	pkt.SentAt = now
	p.outstanding[p.seq] = now
	p.seq++
	p.host.Send(e, pkt)
	if next := now.Add(p.every); next <= p.until {
		e.Schedule(next, p.sendProbe)
	}
}

func (p *Prober) onReply(e *sim.Engine, pkt *netsim.Packet) {
	if pkt.Kind != netsim.Ack {
		return
	}
	if _, ok := p.outstanding[pkt.Seq]; !ok {
		return // answered after the timeout already counted it lost
	}
	delete(p.outstanding, pkt.Seq)
	p.est.ObserveRTT(e.Now().Sub(pkt.SentAt))
	p.est.ObserveLoss(false)
}

// Outstanding returns how many probes are currently unanswered.
func (p *Prober) Outstanding() int { return len(p.outstanding) }
