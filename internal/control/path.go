package control

import (
	"fmt"
	"sync"

	"incastproxy/internal/units"
)

// PathEstimator tracks the quality of one candidate path (the direct WAN
// path, or via one proxy) from whatever samples are available: probe RTTs,
// completed-flow FCTs, and probe loss. Smoothing is per-sample (fixed gain)
// rather than per-virtual-time, so the same type serves both the simulator
// (probe packets on virtual time) and relay.Client (real health-probe dials
// on the wall clock) — the estimator itself never reads any clock.
//
// All methods are safe for concurrent use: the relay's health loop runs on
// its own goroutine.
type PathEstimator struct {
	mu   sync.Mutex
	name string
	gain float64

	rttEwma  float64 // seconds
	rttMin   float64 // best RTT seen: the uncongested baseline
	rttN     uint64
	fctEwma  float64 // seconds
	fctN     uint64
	lossEwma float64 // per-probe loss indicator EWMA in [0,1]
	sent     uint64
	lost     uint64
	busyEwma float64 // per-dial admission-shed indicator EWMA in [0,1]
	dials    uint64
	sheds    uint64
}

// DefaultEstimatorGain is the per-sample EWMA gain.
const DefaultEstimatorGain = 0.2

// NewPathEstimator returns an estimator for the named path. gain in (0,1]
// sets the per-sample smoothing; 0 uses DefaultEstimatorGain.
func NewPathEstimator(name string, gain float64) *PathEstimator {
	if gain <= 0 || gain > 1 {
		gain = DefaultEstimatorGain
	}
	return &PathEstimator{name: name, gain: gain}
}

// Name returns the path label.
func (p *PathEstimator) Name() string { return p.name }

// ObserveRTT folds in one round-trip sample (a probe echo or a health-probe
// dial). Non-positive samples are ignored.
func (p *PathEstimator) ObserveRTT(rtt units.Duration) {
	if p == nil || rtt <= 0 {
		return
	}
	s := rtt.Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rttN == 0 {
		p.rttEwma, p.rttMin = s, s
	} else {
		p.rttEwma += p.gain * (s - p.rttEwma)
		if s < p.rttMin {
			p.rttMin = s
		}
	}
	p.rttN++
}

// ObserveFCT folds in one completed-flow completion time on this path.
func (p *PathEstimator) ObserveFCT(fct units.Duration) {
	if p == nil || fct <= 0 {
		return
	}
	s := fct.Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fctN == 0 {
		p.fctEwma = s
	} else {
		p.fctEwma += p.gain * (s - p.fctEwma)
	}
	p.fctN++
}

// ObserveLoss records one probe outcome (lost or answered).
func (p *PathEstimator) ObserveLoss(lostProbe bool) {
	if p == nil {
		return
	}
	v := 0.0
	if lostProbe {
		v = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sent++
	if lostProbe {
		p.lost++
	}
	if p.sent == 1 {
		p.lossEwma = v
	} else {
		p.lossEwma += p.gain * (v - p.lossEwma)
	}
}

// ObserveBusy records one relay admission verdict: shed (an explicit
// BUSY/GOING_AWAY answer) or admitted. It is a distinct signal from probe
// loss — a shedding relay is *alive*, just overloaded — so the breaker's
// view of relay overload reaches steering policies without being mistaken
// for an unreachable path. Paths that never see admission verdicts (the
// simulator's in-sim probers) keep a zero busy rate.
func (p *PathEstimator) ObserveBusy(shed bool) {
	if p == nil {
		return
	}
	v := 0.0
	if shed {
		v = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dials++
	if shed {
		p.sheds++
	}
	if p.dials == 1 {
		p.busyEwma = v
	} else {
		p.busyEwma += p.gain * (v - p.busyEwma)
	}
}

// RTT returns the smoothed round-trip estimate (0 before any sample).
func (p *PathEstimator) RTT() units.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return units.Duration(p.rttEwma * float64(units.Second))
}

// MinRTT returns the best RTT seen — the path's uncongested baseline.
func (p *PathEstimator) MinRTT() units.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return units.Duration(p.rttMin * float64(units.Second))
}

// Excess returns smoothed RTT minus the baseline: the queueing delay the
// path is currently inflicting. Comparable across paths with very different
// propagation delays (intra-DC proxy hop vs the 4 ms WAN loop), which raw
// RTT is not.
func (p *PathEstimator) Excess() units.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rttN == 0 {
		return 0
	}
	ex := p.rttEwma - p.rttMin
	if ex < 0 {
		ex = 0
	}
	return units.Duration(ex * float64(units.Second))
}

// FCT returns the smoothed flow-completion-time estimate (0 before any).
func (p *PathEstimator) FCT() units.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return units.Duration(p.fctEwma * float64(units.Second))
}

// LossRate returns the smoothed probe loss fraction in [0,1].
func (p *PathEstimator) LossRate() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lossEwma
}

// RTTSamples returns how many RTT samples have been observed.
func (p *PathEstimator) RTTSamples() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rttN
}

// BusyRate returns the smoothed admission-shed fraction in [0,1]: how often
// recent relay dials were answered BUSY/GOING_AWAY.
func (p *PathEstimator) BusyRate() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busyEwma
}

// Admissions returns (dials, sheds) admission-verdict counts.
func (p *PathEstimator) Admissions() (dials, sheds uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials, p.sheds
}

// Probes returns (sent, lost) probe counts.
func (p *PathEstimator) Probes() (sent, lost uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent, p.lost
}

// Healthy reports whether the path's smoothed probe loss is below maxLoss.
// A path with no probe history is presumed healthy (innocent until probed).
func (p *PathEstimator) Healthy(maxLoss float64) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent == 0 || p.lossEwma < maxLoss
}

func (p *PathEstimator) String() string {
	if p == nil {
		return "<nil path>"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("%s{rtt=%v min=%v loss=%.2f n=%d}",
		p.name,
		units.Duration(p.rttEwma*float64(units.Second)),
		units.Duration(p.rttMin*float64(units.Second)),
		p.lossEwma, p.rttN)
}
