package control

import (
	"testing"
)

// FuzzParseConfig hammers the -policy threshold parser: arbitrary input must
// never panic, every accepted config must validate, and the canonical String
// form must be a fixed point (parse → print → parse yields the same config).
func FuzzParseConfig(f *testing.F) {
	f.Add("")
	f.Add("adaptive:onset-depth=4MB,min-dwell=200us")
	f.Add("static:")
	f.Add(DefaultConfig().String())
	f.Add("onset-depth=2MB,decay-depth=1MB,onset-mark-rate=1e5")
	f.Add("probe-loss=0.5,hysteresis=1.0,safe-depth-frac=1")
	f.Add("sample-period=1ps,half-life=1ps")
	f.Add("max-switches=0,overflow-bytes=0")
	f.Add("onset-depth=1e309MB")
	f.Add("min-dwell=\x00us")
	f.Add(",,,=,=,")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseConfig(s)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted config fails validation: %v (input %q)", verr, s)
		}
		rt, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v (input %q)", c.String(), err, s)
		}
		if rt.String() != c.String() {
			t.Fatalf("canonical form not a fixed point:\n in: %s\nout: %s", c.String(), rt.String())
		}
	})
}
