package control

import (
	"fmt"

	"incastproxy/internal/units"
)

// Phase is the detector's hysteresis state.
type Phase int

// The two phases.
const (
	// Quiet: no incast in progress on the watched queue.
	Quiet Phase = iota
	// Incast: congestion onset declared, decay not yet reached.
	Incast
)

func (p Phase) String() string {
	switch p {
	case Quiet:
		return "quiet"
	case Incast:
		return "incast"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// DetectorConfig holds the onset/decay hysteresis thresholds. Onset uses
// the fast signals (instantaneous depth, mark rate); decay uses the smoothed
// depth EWMA with a strictly lower threshold plus a minimum dwell, so the
// detector cannot chatter at a boundary.
type DetectorConfig struct {
	// OnsetDepth declares onset when the instantaneous queue depth
	// reaches it.
	OnsetDepth units.ByteSize
	// OnsetMarkRate declares onset when the smoothed ECN mark rate
	// (marks/sec) reaches it. 0 disables the arm.
	OnsetMarkRate float64
	// DecayDepth declares decay when the depth EWMA falls to it or below
	// (must be < OnsetDepth for hysteresis).
	DecayDepth units.ByteSize
	// MinDwell is the minimum time in a phase before the opposite
	// transition is allowed.
	MinDwell units.Duration
}

// Detector is the online incast onset/decay detector for one queue signal.
type Detector struct {
	cfg   DetectorConfig
	phase Phase
	since units.Time

	onsets  uint64
	decays  uint64
	onsetAt units.Time
}

// NewDetector builds a detector in the Quiet phase.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg}
}

// Step evaluates the signal at virtual time now and returns true when the
// phase changed this step.
func (d *Detector) Step(now units.Time, sig *QueueSignal) bool {
	if now.Sub(d.since) < d.cfg.MinDwell {
		return false
	}
	switch d.phase {
	case Quiet:
		if sig.Congested(d.cfg.OnsetDepth, d.cfg.OnsetMarkRate) {
			d.phase = Incast
			d.since = now
			d.onsetAt = now
			d.onsets++
			return true
		}
	case Incast:
		if sig.Depth.Value() <= float64(d.cfg.DecayDepth) &&
			!sig.Congested(d.cfg.OnsetDepth, d.cfg.OnsetMarkRate) {
			d.phase = Quiet
			d.since = now
			d.decays++
			return true
		}
	}
	return false
}

// ForceOnset moves the detector into the Incast phase at now regardless of
// the signal — used when an out-of-band notification (a Pulser-style flow
// registration burst) declares the incast before the queue shows it.
func (d *Detector) ForceOnset(now units.Time) bool {
	if d.phase == Incast {
		return false
	}
	d.phase = Incast
	d.since = now
	d.onsetAt = now
	d.onsets++
	return true
}

// Phase returns the current phase.
func (d *Detector) Phase() Phase { return d.phase }

// OnsetAt returns when the current (or last) Incast phase began.
func (d *Detector) OnsetAt() units.Time { return d.onsetAt }

// Onsets and Decays count phase transitions so far.
func (d *Detector) Onsets() uint64 { return d.onsets }

// Decays counts Incast→Quiet transitions so far.
func (d *Detector) Decays() uint64 { return d.decays }
