// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package control is the adaptive proxy control plane: it watches the
// telemetry the simulator already produces (queue depth, ECN mark / trim /
// drop counters, probe RTTs, completed-flow FCTs), detects incast onset and
// decay online, maintains per-candidate-path quality estimators, and runs a
// hysteresis-based policy engine that can re-steer an in-flight incast epoch
// between the direct WAN path and a proxy ("the shortest path is not
// necessarily the fastest" — but which path is fastest changes over time).
//
// Everything here advances on simulator virtual time: signals are EWMAs over
// units.Time, probes are engine events, and randomness comes from seeds
// derived with rng.DeriveSeed, so adaptive runs stay byte-identical between
// serial and parallel execution. The package deliberately knows nothing
// about workloads or orchestrators — callers wire signals in and act on the
// controller's steer callbacks — which keeps the dependency arrow pointing
// one way (workload and orchestrator import control, never the reverse).
package control

import (
	"math"

	"incastproxy/internal/units"
)

// EWMA is an exponentially weighted moving average over irregularly spaced
// virtual-time samples. The half-life parameterization makes the smoothing
// independent of the sample period: a sample dt old carries weight
// 2^(-dt/halfLife), so observations one half-life apart count half as much.
type EWMA struct {
	halfLife units.Duration
	value    float64
	last     units.Time
	primed   bool
}

// NewEWMA returns an EWMA with the given half-life (must be positive).
func NewEWMA(halfLife units.Duration) *EWMA {
	if halfLife <= 0 {
		panic("control: EWMA half-life must be positive")
	}
	return &EWMA{halfLife: halfLife}
}

// Observe folds one sample taken at virtual time now into the average.
// Samples at the same instant blend with weight 1/2 (a FIFO same-instant
// tie-break, mirroring the engine's event ordering).
func (m *EWMA) Observe(now units.Time, v float64) {
	if !m.primed {
		m.value, m.last, m.primed = v, now, true
		return
	}
	dt := now.Sub(m.last)
	w := 0.5
	if dt > 0 {
		w = 1 - math.Exp2(-float64(dt)/float64(m.halfLife))
		m.last = now
	}
	m.value += w * (v - m.value)
}

// Value returns the current average (0 before the first sample).
func (m *EWMA) Value() float64 { return m.value }

// Primed reports whether at least one sample has been observed.
func (m *EWMA) Primed() bool { return m.primed }

// Rate turns a monotonically increasing event counter into a smoothed
// events-per-second estimate over virtual time. Feed it the counter's
// current value at each sample instant.
type Rate struct {
	ewma      EWMA
	lastCount uint64
	lastT     units.Time
	primed    bool
}

// NewRate returns a rate estimator smoothing over the given half-life.
func NewRate(halfLife units.Duration) *Rate {
	return &Rate{ewma: *NewEWMA(halfLife)}
}

// Observe records the counter's value at virtual time now and returns the
// smoothed per-second rate.
func (r *Rate) Observe(now units.Time, count uint64) float64 {
	if !r.primed {
		r.lastCount, r.lastT, r.primed = count, now, true
		return 0
	}
	dt := now.Sub(r.lastT)
	if dt <= 0 {
		return r.ewma.Value()
	}
	var delta uint64
	if count > r.lastCount {
		delta = count - r.lastCount
	}
	r.lastCount, r.lastT = count, now
	r.ewma.Observe(now, float64(delta)/dt.Seconds())
	return r.ewma.Value()
}

// Value returns the smoothed rate without adding a sample.
func (r *Rate) Value() float64 { return r.ewma.Value() }
