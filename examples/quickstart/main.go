// Quickstart: simulate one inter-datacenter incast under all three schemes
// of the paper (§4.1) and print the completion times — the minimal use of
// the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	incastproxy "incastproxy"
)

func main() {
	// 8 senders in DC0 push 40 MB total to one receiver in DC1, over
	// the paper's default fabric (100 Gb/s everywhere, 1 ms long-haul
	// links).
	spec := incastproxy.IncastSpec{
		Degree:     8,
		TotalBytes: 40 * incastproxy.MB,
		Runs:       3,
		Seed:       1,
	}

	cmp, err := incastproxy.CompareSchemes(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("incast: %d senders, %v total, %v long-haul links\n\n",
		spec.Degree, spec.TotalBytes, incastproxy.DefaultTopo().InterDelay)
	for _, s := range incastproxy.Schemes() {
		res := cmp.Results[s]
		fmt.Printf("%-18s ICT avg=%-10v min=%-10v max=%-10v",
			s, res.ICT.Avg(), res.ICT.Min(), res.ICT.Max())
		if s != incastproxy.Baseline {
			fmt.Printf("  (%.1f%% faster than baseline)", cmp.Reduction(s)*100)
		}
		fmt.Println()
	}

	fmt.Println("\nThe extra proxy hop *reduces* completion time: the congestion")
	fmt.Println("point moves from the receiver's down-ToR (milliseconds away from")
	fmt.Println("the senders) to the proxy's down-ToR (microseconds away), so the")
	fmt.Println("senders' control loops converge almost immediately.")
}
