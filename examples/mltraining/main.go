// mltraining: a Mixture-of-Experts training job spanning two datacenters
// (§2's motivating workload). Each dispatch phase is an all-to-all
// exchange, so every expert simultaneously receives from all others —
// concurrent incasts over the long-haul links.
//
// The example runs the same job three ways: direct, with every cross-DC
// flow relayed through a single streamlined proxy, and with the proxies
// chosen by the orchestrator across the concurrent incasts (future work
// #3).
//
//	go run ./examples/mltraining
package main

import (
	"fmt"
	"log"

	incastproxy "incastproxy"
	"incastproxy/internal/orchestrator"
	"incastproxy/internal/workload"
)

func main() {
	cfg := workload.MoEConfig{
		LocalExperts:  6, // experts 0..5 live in DC0
		RemoteExperts: 4, // experts 6..9 live in DC1
		BytesPerPair:  6 * incastproxy.MB,
		Phases:        2,
		Period:        incastproxy.Duration(40 * incastproxy.Millisecond),
		ProxyHost:     [2]int{63, 63},
	}
	fmt.Printf("MoE all-to-all: %d+%d experts, %v per pair, %d phases\n\n",
		cfg.LocalExperts, cfg.RemoteExperts, cfg.BytesPerPair, cfg.Phases)

	// 1. Direct: every cross-DC flow pays the long feedback loop.
	direct, _ := workload.MoEAllToAll(cfg, 1)
	runAndReport("direct", direct)

	// 2. Single proxy per DC for all cross-DC flows.
	proxied := cfg
	s := incastproxy.ProxyStreamlined
	proxied.ProxyCrossDC = &s
	proxiedFlows, _ := workload.MoEAllToAll(proxied, 1)
	runAndReport("one proxy per DC", proxiedFlows)

	// 3. Orchestrated: each expert's incoming incast gets its own proxy
	// decision (future work #3), spreading load over a pool of proxy
	// hosts per DC.
	orc := orchestrator.New(1)
	for h := 60; h < 64; h++ {
		orc.Register(orchestrator.Proxy{Ref: workload.HostRef{DC: 0, Host: h}, Capacity: 100 * incastproxy.Gbps})
		orc.Register(orchestrator.Proxy{Ref: workload.HostRef{DC: 1, Host: h}, Capacity: 100 * incastproxy.Gbps})
	}
	orchestrated, assignments, err := orc.AssignIncasts(direct, orchestrator.DefaultFabric(), incastproxy.ProxyStreamlined)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range assignments {
		if !a.Decision.UseProxy {
			fmt.Printf("  orchestrator: incast to %v goes direct (%s)\n", a.Dst, a.Decision.Reason)
		}
	}
	runAndReport("orchestrated proxy pool", orchestrated)
}

func runAndReport(name string, flows []workload.FlowSpec) {
	res, err := incastproxy.RunScenario(incastproxy.Scenario{Flows: flows, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	// Training synchronizes on the slowest flow, so the makespan is the
	// job-visible cost of the exchange.
	fmt.Printf("%-24s makespan=%-10v flows=%d events=%d\n",
		name, res.Makespan, len(res.Done), res.Events)
}
