// tcprelay: the naive proxy design over real net.Conn sockets (§5's
// connection-splitting relay), demonstrated on an in-process emulated WAN
// (internal/lan): DC0 and DC1 endpoints with 10 ms one-way long-haul
// latency and 1 Gb/s rate-limited links.
//
// Four senders in DC0 push to one sink in DC1, first directly, then via a
// relay in DC0. Each emulated connection's in-flight buffer acts like a
// socket buffer: a sender can have at most that many bytes unacknowledged,
// so its throughput over the WAN is window/RTT-limited — the long feedback
// loop. Tenants run with default (small) buffers; the relay is a
// provider-tuned host with large WAN buffers, so splitting the connection
// moves the tight control loop onto the microsecond LAN leg.
//
//	go run ./examples/tcprelay
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"incastproxy/internal/lan"
	"incastproxy/internal/relay"
	"incastproxy/internal/units"
)

const (
	senders   = 4
	perSender = 1 << 20 // 1 MiB each
	wanDelay  = 10 * time.Millisecond
	lanDelay  = 50 * time.Microsecond

	tenantBuf = 128 << 10 // default socket buffer: the tenant's window
	relayBuf  = 8 << 20   // tuned WAN buffer on the managed relay host
)

func main() {
	fabric := lan.NewFabric(lan.PipeConfig{})
	fabric.SetPathFunc(func(from, to lan.Addr) lan.PipeConfig {
		switch {
		case crossDC(from, to) && from == "dc0/relay":
			// The provider-managed relay keeps large, warmed WAN
			// buffers.
			return lan.PipeConfig{Latency: wanDelay, Rate: units.Gbps, BufBytes: relayBuf}
		case crossDC(from, to):
			return lan.PipeConfig{Latency: wanDelay, Rate: units.Gbps, BufBytes: tenantBuf}
		default:
			return lan.PipeConfig{Latency: lanDelay, Rate: 10 * units.Gbps, BufBytes: tenantBuf}
		}
	})

	// Sink in DC1.
	sinkL, err := fabric.Listen("dc1/sink")
	if err != nil {
		log.Fatal(err)
	}
	go runSink(sinkL)

	// Relay in DC0 (same DC as the senders).
	relayL, err := fabric.Listen("dc0/relay")
	if err != nil {
		log.Fatal(err)
	}
	srv := relay.New(relay.Config{Dial: fabric.Dialer("dc0/relay")})
	go srv.Serve(relayL)
	defer srv.Close()

	fmt.Printf("%d senders x %d bytes, WAN one-way %v, LAN one-way %v\n",
		senders, perSender, wanDelay, lanDelay)
	fmt.Printf("tenant window %d KiB, relay WAN window %d KiB\n\n",
		tenantBuf>>10, relayBuf>>10)

	direct := push(fabric, "")
	fmt.Printf("%-12s %v\n", "direct:", direct.Round(time.Millisecond))

	viaRelay := push(fabric, "dc0/relay")
	fmt.Printf("%-12s %v   (relay metrics: conns=%d up=%dB)\n",
		"via relay:", viaRelay.Round(time.Millisecond),
		srv.Metrics.AcceptedConns.Load(), srv.Metrics.BytesUpstream.Load())

	fmt.Println("\nWith connection splitting, each sender's backpressure loop is the")
	fmt.Println("microsecond LAN leg; the relay streams into the WAN continuously")
	fmt.Println("instead of every sender stalling on 20 ms round trips.")
}

func crossDC(a, b lan.Addr) bool {
	return strings.Split(string(a), "/")[0] != strings.Split(string(b), "/")[0]
}

// push sends from all senders to the sink, optionally via the relay, and
// returns the wall-clock completion time of the slowest sender.
func push(fabric *lan.Fabric, relayAddr string) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from := lan.Addr(fmt.Sprintf("dc0/sender%d", i))
			var c net.Conn
			var err error
			if relayAddr != "" {
				c, err = relay.DialViaRelay(context.Background(), fabric.Dialer(from), relayAddr, "dc1/sink")
			} else {
				c, err = fabric.Dial(from, "dc1/sink")
			}
			if err != nil {
				log.Fatalf("sender %d: %v", i, err)
			}
			defer c.Close()
			buf := make([]byte, 64<<10)
			sent := 0
			for sent < perSender {
				n := len(buf)
				if perSender-sent < n {
					n = perSender - sent
				}
				wn, err := c.Write(buf[:n])
				sent += wn
				if err != nil {
					log.Fatalf("sender %d write: %v", i, err)
				}
			}
			if cw, ok := c.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
			}
			// Wait for the sink-side close (ensures full drain).
			io.Copy(io.Discard, c)
		}(i)
	}
	wg.Wait()
	return time.Since(start)
}

func runSink(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			io.Copy(io.Discard, c)
			c.Close()
		}()
	}
}
