// storage: erasure-coded fragment reconstruction across datacenters (§2).
// A fragment is lost; the orchestrator in DC1 reads the surviving
// fragments from servers in DC0 — a cross-datacenter incast whose latency
// is the user-visible read latency.
//
// The example uses the declare abstraction (§6): the storage system
// *declares* the reconstruction pattern, and the deployment layer decides
// per-read whether to relay it through a proxy.
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"

	incastproxy "incastproxy"
	"incastproxy/internal/declare"
	"incastproxy/internal/orchestrator"
	"incastproxy/internal/workload"
)

func main() {
	// A 6+3 Reed-Solomon-style layout: reconstructing one fragment
	// reads 6 surviving fragments of 8 MB each.
	const surviving = 6
	const fragBytes = 8 * incastproxy.MB

	orc := orchestrator.New(1)
	orc.Register(orchestrator.Proxy{Ref: workload.HostRef{DC: 0, Host: 63}, Capacity: 100 * incastproxy.Gbps})
	dep := &declare.Deployment{
		Orc:         orc,
		InterRTT:    4 * incastproxy.Millisecond,
		IntraRTT:    10 * incastproxy.Microsecond,
		Rate:        100 * incastproxy.Gbps,
		BufferBytes: 17 * incastproxy.MB,
	}

	// The storage system declares its pattern once.
	senders := make([]workload.HostRef, surviving)
	for i := range senders {
		senders[i] = workload.HostRef{DC: 0, Host: i}
	}
	group := declare.Group{
		Name:           "reconstruct-fragment",
		Receiver:       workload.HostRef{DC: 1, Host: 0},
		Senders:        senders,
		BytesPerSender: fragBytes,
	}

	planned, _, err := dep.Plan([]declare.Group{group}, 1)
	if err != nil {
		log.Fatal(err)
	}
	dec := planned[0].Decision
	fmt.Printf("reconstruction: %d fragments x %v -> %v\n", surviving, fragBytes, group.Receiver)
	fmt.Printf("deployment decision: useProxy=%v (%s)\n\n", dec.UseProxy, dec.Reason)

	// Run the planned (proxied) read and a forced-direct variant for
	// comparison.
	proxiedRes, err := incastproxy.RunScenario(incastproxy.Scenario{
		Flows: declare.Flows(planned), Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	directFlows := declare.Flows(planned)
	for i := range directFlows {
		directFlows[i].Via = nil
	}
	directRes, err := incastproxy.RunScenario(incastproxy.Scenario{Flows: directFlows, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s read latency = %v\n", "direct (status quo)", directRes.Makespan)
	fmt.Printf("%-22s read latency = %v\n", "proxy-assisted", proxiedRes.Makespan)
	if dec.UseProxy {
		faster := 1 - float64(proxiedRes.Makespan)/float64(directRes.Makespan)
		fmt.Printf("\nreconstruction completes %.1f%% faster through the proxy.\n", faster*100)
	}

	// A small read (one hot fragment) is declared too — the deployment
	// correctly leaves it direct (Figure 2 Right: small incasts don't
	// benefit).
	small := group
	small.Name = "read-hot-fragment"
	small.Senders = senders[:2]
	small.BytesPerSender = 256 * incastproxy.KB
	plannedSmall, _, err := dep.Plan([]declare.Group{small}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsmall read decision: useProxy=%v (%s)\n",
		plannedSmall[0].Decision.UseProxy, plannedSmall[0].Decision.Reason)
}
