// patternaware: the §6 research agenda's second direction — "proxying
// incast through pattern-aware rerouting". A third-party application emits
// periodic incast bursts (ML-training-like synchronization); no developer
// annotations exist. The operator's detector watches flow starts, declares
// an incast when the per-destination degree crosses its threshold, learns
// the burst period, predicts the next onset, and pre-installs proxy
// routing for the predicted bursts.
//
//	go run ./examples/patternaware
package main

import (
	"fmt"
	"log"
	"sort"

	incastproxy "incastproxy"
	"incastproxy/internal/detect"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

const (
	phases   = 5
	degree   = 6
	perFlow  = 5 * incastproxy.MB
	period   = incastproxy.Duration(40 * incastproxy.Millisecond)
	receiver = 0 // DC1 host index
)

func main() {
	base := periodicBursts(nil)

	// --- The operator's control plane ---------------------------------
	// It sees flow starts (switch telemetry / flow logs) and runs the
	// incast detector. We feed it the workload's own flow-start stream,
	// which is exactly what the fabric would report.
	det := detect.NewIncastDetector(detect.IncastDetectorConfig{
		DegreeThreshold: 4,
		MinBytes:        10 * units.MB,
		Window:          units.Duration(2 * units.Millisecond),
	})
	dst := uint64(receiver)
	detectedAt := incastproxy.Duration(-1)
	for _, f := range sortedByStart(base) {
		if det.ObserveFlowStart(dst, uint64(f.Src.Host), f.Bytes, units.Time(f.Start)) &&
			detectedAt < 0 {
			detectedAt = f.Start
		}
	}
	next, ok := det.PredictNextOnset(dst)
	fmt.Printf("operator: first incast detected at t=%v; %d onsets recorded\n",
		detectedAt, len(det.Onsets(dst)))
	if !ok {
		log.Fatal("operator: no periodicity learned")
	}
	fmt.Printf("operator: periodic pattern learned, next onset predicted at t=%v (true: t=%v)\n\n",
		units.Duration(next), incastproxy.Duration(phases)*period)

	// --- Intervention --------------------------------------------------
	// The operator can only act on bursts *after* the pattern is
	// learned (3 onsets). Earlier bursts already ran direct.
	actFrom := det.Onsets(dst)[2]
	rerouted := periodicBursts(func(f *workload.FlowSpec) {
		if f.Start > incastproxy.Duration(actFrom) {
			f.Via = &workload.ProxyRef{
				Scheme: incastproxy.ProxyStreamlined,
				At:     workload.HostRef{DC: 0, Host: 63},
			}
		}
	})

	reportPerBurst("without intervention", base)
	fmt.Println()
	reportPerBurst("pattern-aware rerouting", rerouted)
	fmt.Println("\nBursts before the pattern is learned pay the long feedback loop;")
	fmt.Println("once the period is known, predicted bursts are relayed through the")
	fmt.Println("proxy and complete an order of magnitude faster.")
}

// periodicBursts builds the periodic incast; mutate (optional) edits each
// flow before it is appended.
func periodicBursts(mutate func(*workload.FlowSpec)) []workload.FlowSpec {
	var flows []workload.FlowSpec
	id := incastproxy.FlowID(1)
	for ph := 0; ph < phases; ph++ {
		for s := 0; s < degree; s++ {
			f := workload.FlowSpec{
				ID:    id,
				Src:   workload.HostRef{DC: 0, Host: s},
				Dst:   workload.HostRef{DC: 1, Host: receiver},
				Bytes: perFlow,
				Start: incastproxy.Duration(ph) * period,
			}
			if mutate != nil {
				mutate(&f)
			}
			flows = append(flows, f)
			id++
		}
	}
	return flows
}

func sortedByStart(flows []workload.FlowSpec) []workload.FlowSpec {
	out := append([]workload.FlowSpec(nil), flows...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func reportPerBurst(name string, flows []workload.FlowSpec) {
	res, err := incastproxy.RunScenario(incastproxy.Scenario{Flows: flows, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	for ph := 0; ph < phases; ph++ {
		start := incastproxy.Duration(ph) * period
		var last incastproxy.Duration
		proxied := false
		for _, f := range flows {
			if f.Start != start {
				continue
			}
			if d := res.Done[f.ID]; d > last {
				last = d
			}
			proxied = proxied || f.Via != nil
		}
		route := "direct"
		if proxied {
			route = "proxied"
		}
		fmt.Printf("  burst %d (%-7s) ICT = %v\n", ph, route, last-start)
	}
}
