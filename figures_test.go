package incastproxy

import (
	"bytes"
	"fmt"
	"testing"
)

// testSweep is a miniature sweep (two degrees, 8 MB, 2 runs) that keeps the
// figure-path tests fast while exercising every scheme and multiple rows.
func testSweep() SweepConfig {
	return SweepConfig{
		Degrees:         []int{2, 4},
		Fig2LeftTotal:   8 * MB,
		Sizes:           []ByteSize{4 * MB, 8 * MB},
		Fig2RightDegree: 2,
		Latencies:       []Duration{Millisecond},
		Fig3Degree:      2,
		Fig3Total:       8 * MB,
		Runs:            2,
		Seed:            1,
		Parallel:        1,
	}
}

// Regression for the sweepPoint shared-seed bug: every sweep point and every
// scheme used to run with the raw cfg.Seed, so samples were correlated
// across the whole figure. Each cell must now get its own derived seed.
func TestSweepCellsGetDistinctSeeds(t *testing.T) {
	pts, err := Figure2Left(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]string, len(pts))
	for _, p := range pts {
		cell := p.Label + "/" + p.Scheme.String()
		if p.Seed == 0 {
			t.Fatalf("cell %s has no recorded seed", cell)
		}
		if prev, dup := seen[p.Seed]; dup {
			t.Fatalf("cells %s and %s share seed %d", prev, cell, p.Seed)
		}
		seen[p.Seed] = cell
	}
	// Two points of the same scheme must differ (the reported bug), and
	// two schemes of the same point must differ too.
	if pts[0].Seed == pts[len(pts)-1].Seed {
		t.Fatal("first and last sweep cells share a seed")
	}
}

// The tentpole acceptance bar: a figure table rendered from a parallel sweep
// must be byte-identical to the serial one.
func TestFigureTableSerialVsParallel(t *testing.T) {
	render := func(parallel int) []byte {
		cfg := testSweep()
		cfg.Parallel = parallel
		pts, err := Figure2Left(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFigureTable(&buf, "Figure 2 (Left)", pts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("figure tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("figure table unexpectedly empty")
	}
}

// Reductions still compute against the row's own baseline after the
// ordered-merge refactor (the backfill used to happen inside sweepPoint).
func TestSweepBaselineBackfill(t *testing.T) {
	pts, err := Figure2Right(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]Duration)
	for _, p := range pts {
		if p.Scheme == Baseline {
			byLabel[p.Label] = p.Avg
		}
	}
	for _, p := range pts {
		if p.BaselineAvg != byLabel[p.Label] {
			t.Fatalf("point %s/%v: BaselineAvg %v, want row baseline %v",
				p.Label, p.Scheme, p.BaselineAvg, byLabel[p.Label])
		}
	}
}

// FigureAdaptive's table must carry all three compared schemes on every row
// — including the stress rows — with baselines backfilled, and the crash row
// must show the adaptive policy's failover beating the static scheme pinned
// behind the dead proxy.
func TestFigureAdaptiveComparesPolicies(t *testing.T) {
	cfg := testSweep()
	cfg.Sizes = []ByteSize{8 * MB}
	cfg.Fig2RightDegree = 4
	cfg.Fig3Total = 24 * MB
	cfg.Fig3Degree = 4
	cfg.Runs = 1
	cfg.Parallel = 0
	pts, err := FigureAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const schemesPerRow = 3
	if len(pts) != 3*schemesPerRow { // one size + cross row + crash row
		t.Fatalf("got %d points, want %d", len(pts), 3*schemesPerRow)
	}
	byCell := map[string]Duration{}
	for _, p := range pts {
		if p.BaselineAvg <= 0 {
			t.Errorf("%s %v: baseline not backfilled", p.Label, p.Scheme)
		}
		byCell[p.Label+"/"+p.Scheme.String()] = p.Avg
	}
	crash := fmt.Sprintf("size=%v+crash", cfg.Fig3Total)
	ad, st := byCell[crash+"/adaptive"], byCell[crash+"/proxy-streamlined"]
	if ad == 0 || st == 0 {
		t.Fatalf("crash row incomplete: %v", byCell)
	}
	if ad >= st {
		t.Errorf("crash row: adaptive %v should beat static %v via failover", ad, st)
	}
}
