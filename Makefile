GO ?= go

.PHONY: build test check race fuzz chaos figures fmt bench lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI gate: static analysis, the virtual-time lint, and the full suite
# under the race detector (the chaos, relay, and lan tests all exercise
# real concurrency).
check: lint
	$(GO) test -race ./...

# Static analysis plus the wall-clock ban: internal/sim, netsim, transport,
# and obs run on virtual time only — a time.Now/time.Sleep there breaks
# byte-identical determinism (see TestNoWallClockInVirtualTimePaths).
lint:
	$(GO) vet ./...
	$(GO) test -run TestNoWallClockInVirtualTimePaths ./internal/obs/

# Microbenchmarks: instrument hot-path costs (obs) and the instrumented vs
# uninstrumented incast comparison backing the ≤5% overhead budget.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCounterAdd|BenchmarkHistogramObserve|BenchmarkTracerInstant|BenchmarkSnapshot' -benchmem ./internal/obs/
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 3x .

race:
	$(GO) test -race ./...

# Short fuzz pass over the attacker-facing dial-preamble parser.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParsePreamble -fuzztime=30s ./internal/wire/

# The fixed-seed proxy-failure scenarios (see EXPERIMENTS.md, "Chaos").
chaos:
	$(GO) test -run 'TestChaos|TestRunChaosThroughAPI' -v ./internal/workload/ .

figures:
	$(GO) run ./cmd/figures

fmt:
	gofmt -l .
