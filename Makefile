GO ?= go

.PHONY: build test check race race-runner fuzz chaos figures fmt bench lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI gate: static analysis, the virtual-time lint, and the full suite
# under the race detector (the chaos, relay, and lan tests all exercise
# real concurrency).
check: lint
	$(GO) test -race ./...

# Static analysis plus the wall-clock ban: internal/sim, netsim, transport,
# and obs run on virtual time only — a time.Now/time.Sleep there breaks
# byte-identical determinism (see TestNoWallClockInVirtualTimePaths).
lint:
	$(GO) vet ./...
	$(GO) test -run TestNoWallClockInVirtualTimePaths ./internal/obs/

# Microbenchmarks: instrument hot-path costs (obs), the instrumented vs
# uninstrumented incast comparison backing the ≤5% overhead budget, the
# pooled event-loop alloc counts (sim), and the serial-vs-parallel sweep
# speedup of the deterministic runner.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCounterAdd|BenchmarkHistogramObserve|BenchmarkTracerInstant|BenchmarkSnapshot' -benchmem ./internal/obs/
	$(GO) test -run '^$$' -bench 'BenchmarkScheduleRun|BenchmarkTimerRearm' -benchmem ./internal/sim/
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 3x .
	$(GO) test -run '^$$' -bench BenchmarkSweepSerialVsParallel -benchtime 1x -benchmem .

# The worker pool and everything routed through it must be race-clean; the
# full suite runs under the detector (chaos, relay, and lan tests exercise
# real concurrency too).
race:
	$(GO) test -race ./...

# Focused race pass over the deterministic parallel runner and its callers.
race-runner:
	$(GO) test -race ./internal/runner/ ./internal/workload/ .

# Short fuzz pass over the attacker-facing dial-preamble parser.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParsePreamble -fuzztime=30s ./internal/wire/

# The fixed-seed proxy-failure scenarios (see EXPERIMENTS.md, "Chaos").
chaos:
	$(GO) test -run 'TestChaos|TestRunChaosThroughAPI' -v ./internal/workload/ .

figures:
	$(GO) run ./cmd/figures

fmt:
	gofmt -l .
