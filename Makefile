GO ?= go

.PHONY: build test check race race-runner fuzz fuzz-smoke chaos soak figures fmt bench bench-json lint lint-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI gate: static analysis, the virtual-time lint, and the full suite
# under the race detector (the chaos, relay, and lan tests all exercise
# real concurrency).
check: lint
	$(GO) test -race -timeout 50m ./...

# Static analysis: go vet plus the repo's own analyzer suite (internal/lint,
# driven by cmd/lint) — wallclock (no wall-clock reads in packages carrying
# the lint:virtual-time pragma), rawrand (no math/rand globals or ad-hoc
# seed arithmetic), maporder (no map-iteration-ordered output),
# orphangoroutine (no uncoordinated goroutines in the live-concurrency
# packages), and errdrop (no silently dropped write/encode errors on the
# wire/relay/obs output paths). Non-zero exit on any unsuppressed finding.
# See DESIGN.md §12.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/lint

# Machine-readable findings (CI uploads this as an artifact).
lint-json:
	$(GO) run ./cmd/lint -json > lint.json

# Microbenchmarks, one `-bench .` invocation per package so new benchmarks
# are picked up without editing a name list here. The root package's
# benchmarks are whole-simulation figure sweeps, so its iteration count
# stays capped at one pass per benchmark.
BENCH_PKGS = ./internal/obs/ ./internal/sim/ ./internal/control/ ./internal/transport/ ./internal/wire/ ./internal/hoststack/ ./internal/model/
bench:
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS)
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

# Machine-readable benchmark record (go test -json event stream), one line
# per event, all packages concatenated — includes the internal/control
# estimator/detector/parser benchmarks. BENCH_relay.json covers the live
# relay data plane (splice throughput, admission-shed latency);
# BENCH_obs.json isolates the tracing/metrics instruments (tracer add,
# span emit enabled vs nil, windowed-quantile observe) so the cost of the
# observability layer is tracked on its own.
# BENCH_sim_shard.json records the sharded-engine scaling sweep (events/sec
# at shards 1/2/4 x worker counts vs the single-engine baseline); on a
# single-core host the multi-worker rows measure synchronization overhead,
# not speedup — see the benchmark's comment.
# BENCH_model.json records the analytical fast path: the internal/model
# micro-benchmarks (Predict/Compare/FromSpec) plus the 1002-cell fast sweep
# beside the six-cell DES degree sweep, so the model-vs-simulator speedup is
# pinned in one file.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -json $(BENCH_PKGS) > BENCH_control.json
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -json . >> BENCH_control.json
	$(GO) test -run '^$$' -bench . -benchmem -json ./internal/relay/ > BENCH_relay.json
	$(GO) test -run '^$$' -bench 'Tracer|Span|WindowQuantile|Counter|Gauge|Histogram|Snapshot' -benchmem -json ./internal/obs/ > BENCH_obs.json
	$(GO) test -run '^$$' -bench ShardedIncast -benchtime 3x -benchmem -json ./internal/workload/ > BENCH_sim_shard.json
	$(GO) test -run '^$$' -bench . -benchmem -json ./internal/model/ > BENCH_model.json
	$(GO) test -run '^$$' -bench 'FastSweep1000Cells|Fig2LeftDegreeSweep' -benchtime 1x -benchmem -json . >> BENCH_model.json

# The worker pool and everything routed through it must be race-clean; the
# full suite runs under the detector (chaos, relay, and lan tests exercise
# real concurrency too). The explicit timeout matches CI's race leg: the
# detector's 5-15x slowdown pushes the workload suite past go test's 10m
# default on small hosts.
race:
	$(GO) test -race -timeout 50m ./...

# Focused race pass over the deterministic parallel runner, the sharded
# event engine (byte-identity across worker counts under the detector), and
# their callers.
race-runner:
	$(GO) test -race -timeout 50m ./internal/sim/ ./internal/topo/ ./internal/runner/ ./internal/workload/ .

# Short fuzz passes over the attacker-facing dial-preamble parser and the
# -policy threshold parser (one -fuzz target per invocation, a go tool
# restriction).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParsePreamble -fuzztime=30s ./internal/wire/
	$(GO) test -run=^$$ -fuzz=FuzzHeaderRoundTrip -fuzztime=30s ./internal/wire/
	$(GO) test -run=^$$ -fuzz=FuzzParseConfig -fuzztime=30s ./internal/control/

# Short fuzz pass over the attacker-facing wire parsers, sized for a CI
# smoke step: long enough to shake out a regressed bounds check, short
# enough to keep the gate fast.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParsePreamble -fuzztime=10s ./internal/wire/
	$(GO) test -run=^$$ -fuzz=FuzzHeaderRoundTrip -fuzztime=10s ./internal/wire/

# The fixed-seed proxy-failure scenarios (see EXPERIMENTS.md, "Chaos").
chaos:
	$(GO) test -run 'TestChaos|TestRunChaosThroughAPI' -v ./internal/workload/ .

# Live-relay chaos soak: the real data plane (loopback TCP, production
# Server/DialViaRelay) at 2x admission capacity through the seeded fault
# proxy, under the race detector. Deterministic fault schedule; asserts the
# overload contract (explicit sheds, bounded p99, clean drain, no leaks)
# and trace completeness (every admitted flow closes a full client+relay
# span tree; every shed leaves a terminal event). See internal/chaosnet
# and EXPERIMENTS.md, "Chaos soak".
soak:
	$(GO) test -race -run 'TestChaosSoak' -count=1 -v ./internal/chaosnet/

figures:
	$(GO) run ./cmd/figures

fmt:
	gofmt -l .
