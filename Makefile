GO ?= go

.PHONY: build test check race fuzz chaos figures fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The CI gate: static analysis plus the full suite under the race detector
# (the chaos, relay, and lan tests all exercise real concurrency).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the attacker-facing dial-preamble parser.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParsePreamble -fuzztime=30s ./internal/wire/

# The fixed-seed proxy-failure scenarios (see EXPERIMENTS.md, "Chaos").
chaos:
	$(GO) test -run 'TestChaos|TestRunChaosThroughAPI' -v ./internal/workload/ .

figures:
	$(GO) run ./cmd/figures

fmt:
	gofmt -l .
