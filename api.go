// Package incastproxy reproduces "Mitigating Inter-datacenter Incast with
// a Proxy: The shortest path is not necessarily the fastest" (HotNets '25):
// a packet-level simulation study of routing inter-datacenter incast
// traffic through a proxy in the sending datacenter, plus the supporting
// systems the paper describes — the naive and streamlined proxy designs,
// host-stack overhead models, a real TCP connection-splitting relay, an
// incast orchestrator, and loss/incast detectors.
//
// This package is the public API: experiment specifications, the three
// compared schemes, figure-regeneration sweeps, and re-exports of the
// pieces a downstream user composes (see the examples/ directory).
package incastproxy

import (
	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/stats"
	"incastproxy/internal/topo"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// Re-exported quantity types. All simulated time is in picoseconds
// (units.Duration); sizes in bytes; rates in bits per second.
type (
	// Duration is a span of simulated time.
	Duration = units.Duration
	// ByteSize is a quantity of data.
	ByteSize = units.ByteSize
	// BitRate is a transmission rate.
	BitRate = units.BitRate
)

// Common quantities.
const (
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
	KB          = units.KB
	MB          = units.MB
	GB          = units.GB
	Gbps        = units.Gbps
)

// Scheme selects how incast traffic is routed.
type Scheme = workload.Scheme

// The three schemes of §4.1.
const (
	// Baseline sends directly to the remote receiver.
	Baseline = workload.Baseline
	// ProxyNaive relays through two split connections at the proxy.
	ProxyNaive = workload.ProxyNaive
	// ProxyStreamlined routes one connection via the proxy, which NACKs
	// trimmed packets.
	ProxyStreamlined = workload.ProxyStreamlined
	// SchemeAdaptive starts direct and lets the online control plane
	// re-steer the epoch mid-flight (internal/control).
	SchemeAdaptive = workload.SchemeAdaptive
)

// Schemes lists the three static schemes of §4.1, for sweeps. SchemeAdaptive
// is compared against them separately (FigureAdaptive).
func Schemes() []Scheme { return workload.Schemes() }

// Experiment types, re-exported from the workload engine.
type (
	// IncastSpec describes one incast experiment (§4 methodology).
	IncastSpec = workload.Spec
	// IncastResult aggregates an experiment's runs.
	IncastResult = workload.Result
	// RunResult is a single simulated incast.
	RunResult = workload.RunResult
	// Scenario is an arbitrary multi-flow workload.
	Scenario = workload.Scenario
	// ScenarioResult reports per-flow completion.
	ScenarioResult = workload.ScenarioResult
	// FlowSpec is one transfer in a Scenario.
	FlowSpec = workload.FlowSpec
	// HostRef names a host by datacenter and index.
	HostRef = workload.HostRef
	// ProxyRef routes a flow via a proxy.
	ProxyRef = workload.ProxyRef
	// TopoConfig describes the two-DC fabric (§4.1 defaults).
	TopoConfig = topo.Config
	// FlowID identifies a flow.
	FlowID = netsim.FlowID
)

// DefaultTopo returns the §4.1 fabric: two 8x8x8 leaf-spine datacenters
// joined by 64 backbone routers, all links 100 Gb/s, 1 us intra-DC and
// 1 ms long-haul propagation.
func DefaultTopo() TopoConfig { return topo.DefaultConfig() }

// RunIncast simulates one incast experiment. Set IncastSpec.Parallel to fan
// the spec's repeated runs across worker goroutines; results are merged in
// run order, so the output is byte-identical to a serial run.
func RunIncast(spec IncastSpec) (*IncastResult, error) { return workload.Run(spec) }

// RunScenario simulates an arbitrary multi-flow workload.
func RunScenario(sc Scenario) (*ScenarioResult, error) { return workload.RunScenario(sc) }

// RunScenarios simulates independent scenarios fanned across parallel
// workers (0 or 1: serial; negative: one worker per CPU), returning results
// in input order, byte-identical to running each serially.
func RunScenarios(scs []Scenario, parallel int) ([]*ScenarioResult, error) {
	return workload.RunScenarios(scs, parallel)
}

// Comparison is the outcome of running the same incast under every scheme.
type Comparison struct {
	Spec    IncastSpec
	Results map[Scheme]*IncastResult
}

// CompareSchemes runs the same incast under all three schemes.
func CompareSchemes(spec IncastSpec) (*Comparison, error) {
	c := &Comparison{Spec: spec, Results: make(map[Scheme]*IncastResult, 3)}
	for _, s := range Schemes() {
		sp := spec
		sp.Scheme = s
		res, err := workload.Run(sp)
		if err != nil {
			return nil, err
		}
		c.Results[s] = res
	}
	return c, nil
}

// ICT returns the average incast completion time under a scheme.
func (c *Comparison) ICT(s Scheme) Duration { return c.Results[s].ICT.Avg() }

// Reduction returns a proxy scheme's relative ICT reduction versus the
// baseline (the paper's headline metric).
func (c *Comparison) Reduction(s Scheme) float64 {
	return stats.Reduction(c.ICT(Baseline), c.ICT(s))
}

// Distribution re-exports the latency-distribution interface used to model
// proxy processing overheads.
type Distribution = rng.Distribution

// ConstantDelay returns a fixed-latency distribution.
func ConstantDelay(d Duration) Distribution { return rng.Constant{D: d} }

// Fault-injection and failover types: the robustness side of the proxy
// argument. A ChaosSpec crashes the proxy mid-incast (optionally with an
// inter-DC blackhole on top) and recovers via the chosen failover policy;
// see internal/faults for the underlying injector.
type (
	// ChaosSpec describes a proxied incast with injected proxy failure.
	ChaosSpec = workload.ChaosSpec
	// ChaosResult reports one chaos run, fault timeline included.
	ChaosResult = workload.ChaosResult
	// FailoverMode picks what happens to flows stranded on a dead proxy.
	FailoverMode = workload.FailoverMode
)

// The failover policies.
const (
	// FailoverNone leaves stranded flows to RTO against the dead proxy.
	FailoverNone = workload.FailoverNone
	// FailoverStandby re-homes stranded flows through a standby proxy.
	FailoverStandby = workload.FailoverStandby
	// FailoverDirect degrades stranded flows to the direct path.
	FailoverDirect = workload.FailoverDirect
)

// RunChaos simulates one incast under proxy failure.
func RunChaos(spec ChaosSpec) (*ChaosResult, error) { return workload.RunChaos(spec) }

// RunChaosSeries repeats a chaos experiment runs times with derived per-run
// seeds, fanned across parallel workers; results come back in run order,
// byte-identical to a serial loop.
func RunChaosSeries(spec ChaosSpec, runs, parallel int) ([]*ChaosResult, error) {
	return workload.RunChaosSeries(spec, runs, parallel)
}

// Observability types: every run carries a Manifest (seed, config hash,
// final metric snapshot) and, when ObsConfig.Trace is set, a Tracer whose
// events export as CSV or Chrome trace-event JSON (viewable in Perfetto).
type (
	// ObsConfig controls a run's observability (IncastSpec.Obs).
	ObsConfig = workload.ObsConfig
	// Tracer is an append-only flow/queue event trace in virtual time.
	Tracer = obs.Tracer
	// MetricsSnapshot is a deterministic point-in-time metrics copy.
	MetricsSnapshot = obs.Snapshot
	// Manifest identifies a run and embeds its metric snapshot.
	Manifest = obs.Manifest
)
